package mwsim

import (
	"math"
	"testing"

	"repro/internal/manifold/mconfig"
)

func TestRunLevelZero(t *testing.T) {
	r := Run(PaperConfig(2, 0, 1e-3))
	if r.Workers != 1 {
		t.Fatalf("workers = %d, want 1", r.Workers)
	}
	// ct is dominated by start-up + one fork (the paper's ~7.7 s floor).
	if r.ConcurrentSec < 5 || r.ConcurrentSec > 12 {
		t.Errorf("ct(0) = %g, want the 5-12 s overhead floor", r.ConcurrentSec)
	}
	if r.Speedup > 0.01 {
		t.Errorf("su(0) = %g, want ~0", r.Speedup)
	}
	if r.Forks != 1 {
		t.Errorf("forks = %d, want 1", r.Forks)
	}
}

func TestWorkerCountIsTwoLPlusOne(t *testing.T) {
	for _, l := range []int{0, 1, 4, 9} {
		r := Run(PaperConfig(2, l, 1e-3))
		want := 2*l + 1
		if l == 0 {
			want = 1
		}
		if r.Workers != want {
			t.Fatalf("level %d: workers = %d, want %d", l, r.Workers, want)
		}
	}
}

func TestDeterministic(t *testing.T) {
	a := Run(PaperConfig(2, 12, 1e-3))
	b := Run(PaperConfig(2, 12, 1e-3))
	if a.ConcurrentSec != b.ConcurrentSec || a.AvgMachines != b.AvgMachines ||
		a.Forks != b.Forks || a.PeakMachines != b.PeakMachines {
		t.Fatalf("simulation not deterministic: %+v vs %+v", a, b)
	}
}

func TestSpeedupCrossoverNearLevelTen(t *testing.T) {
	// The paper: no gain for l < 10, gain for l >= 10 (su crosses 1 around
	// level 10). Allow the crossover anywhere in 9..12.
	var crossed int = -1
	for l := 5; l <= 13; l++ {
		r := Run(PaperConfig(2, l, 1e-3))
		if r.Speedup >= 1 {
			crossed = l
			break
		}
	}
	if crossed < 9 || crossed > 12 {
		t.Fatalf("speedup crossed 1.0 at level %d, want 9..12 (paper: 10)", crossed)
	}
}

func TestLevel15MatchesPaperShape(t *testing.T) {
	r3 := Run(PaperConfig(2, 15, 1e-3))
	// Paper: st 2019.02, ct 259.69, m 12.2, su 7.8.
	if math.Abs(r3.SequentialSec-2019.02)/2019.02 > 0.02 {
		t.Errorf("st = %g, want ~2019", r3.SequentialSec)
	}
	if r3.ConcurrentSec < 200 || r3.ConcurrentSec > 320 {
		t.Errorf("ct = %g, want 200-320 (paper 259.69)", r3.ConcurrentSec)
	}
	if r3.Speedup < 6.5 || r3.Speedup > 9.5 {
		t.Errorf("su = %g, want 6.5-9.5 (paper 7.8)", r3.Speedup)
	}
	if r3.AvgMachines < 10 || r3.AvgMachines > 15 {
		t.Errorf("m = %g, want 10-15 (paper 12.2)", r3.AvgMachines)
	}

	r4 := Run(PaperConfig(2, 15, 1e-4))
	if math.Abs(r4.SequentialSec-4118.08)/4118.08 > 0.02 {
		t.Errorf("st(1e-4) = %g, want ~4118", r4.SequentialSec)
	}
	if r4.Speedup < 6.5 || r4.Speedup > 10.5 {
		t.Errorf("su(1e-4) = %g, want 6.5-10.5 (paper 7.9)", r4.Speedup)
	}
}

func TestSpeedupLagsMachines(t *testing.T) {
	// "the average speedup in a run always lags behind the average number
	// of machines it uses."
	for _, l := range []int{10, 12, 14, 15} {
		r := Run(PaperConfig(2, l, 1e-3))
		if r.Speedup >= r.AvgMachines {
			t.Errorf("level %d: su %g >= m %g", l, r.Speedup, r.AvgMachines)
		}
	}
}

func TestMachinesGrowWithLevel(t *testing.T) {
	prev := 0.0
	for _, l := range []int{2, 6, 10, 13, 15} {
		r := Run(PaperConfig(2, l, 1e-3))
		if r.AvgMachines+0.3 < prev {
			t.Fatalf("m shrank: level %d has %g < %g", l, r.AvgMachines, prev)
		}
		prev = r.AvgMachines
	}
}

func TestEbbAndFlowTrace(t *testing.T) {
	// Figure 1: the machine count expands and shrinks during a level-15
	// run; the trace must go up, come down before the end, and its
	// weighted average must match the reported m.
	r := Run(PaperConfig(2, 15, 1e-3))
	if len(r.Trace) < 10 {
		t.Fatalf("trace has only %d points", len(r.Trace))
	}
	peakAt := 0.0
	for _, pt := range r.Trace {
		if pt.Count == r.PeakMachines {
			peakAt = pt.T
			break
		}
	}
	if peakAt >= r.ConcurrentSec*0.9 {
		t.Errorf("peak reached only at %g of %g: no shrinking phase", peakAt, r.ConcurrentSec)
	}
	last := r.Trace[len(r.Trace)-1]
	if last.Count != 0 {
		t.Errorf("final machine count %d, want 0 (application exit)", last.Count)
	}
}

func TestPerpetualReducesForks(t *testing.T) {
	cfg := PaperConfig(2, 8, 1e-3)
	withReuse := Run(cfg)
	cfg.Perpetual = false
	without := Run(cfg)
	if withReuse.Forks >= without.Forks {
		t.Fatalf("perpetual forks %d >= non-perpetual %d", withReuse.Forks, without.Forks)
	}
	if without.Reuses != 0 {
		t.Fatalf("non-perpetual run reused %d times", without.Reuses)
	}
}

func TestBundledParallelModeUsesOneMachinePair(t *testing.T) {
	// The paper's "{load 6}" change: with the load raised to cover the
	// whole pool, every worker is bundled into the master's own task
	// instance — the application runs in parallel (threads in one OS
	// process) on a single machine, with no remote forks at all.
	cfg := PaperConfig(2, 5, 1e-3)
	cfg.MaxLoad = 64
	r := Run(cfg)
	if r.PeakMachines != 1 {
		t.Fatalf("peak machines = %d, want 1 in bundled mode", r.PeakMachines)
	}
	if r.Forks != 0 {
		t.Fatalf("forks = %d, want 0 (workers join the start-up task)", r.Forks)
	}
}

func TestIOWorkersShortenHighLevelRuns(t *testing.T) {
	// §4.1's untried alternative: delegating data movement to I/O workers
	// removes the transfers from the master's time line, which must not
	// slow the run down.
	base := Run(PaperConfig(2, 14, 1e-3))
	cfg := PaperConfig(2, 14, 1e-3)
	cfg.IOWorkers = true
	io := Run(cfg)
	if io.ConcurrentSec > base.ConcurrentSec {
		t.Fatalf("I/O workers slowed the run: %g > %g", io.ConcurrentSec, base.ConcurrentSec)
	}
}

func TestPoolPerLevelAddsBarrier(t *testing.T) {
	// Splitting the nested loop into a pool per grid level adds a
	// rendezvous barrier between the lm = level-1 and lm = level pools, so
	// the run cannot be faster than the single-pool version.
	base := Run(PaperConfig(2, 12, 1e-3))
	cfg := PaperConfig(2, 12, 1e-3)
	cfg.PoolPerLevel = true
	split := Run(cfg)
	if split.ConcurrentSec < base.ConcurrentSec-1e-9 {
		t.Fatalf("pool-per-level run faster than single pool: %g < %g",
			split.ConcurrentSec, base.ConcurrentSec)
	}
}

func TestNoiseStaysClose(t *testing.T) {
	// With the multi-user noise model the numbers must stay in the same
	// ballpark — the paper averaged five runs precisely because the
	// perturbations were minor.
	base := Run(PaperConfig(2, 12, 1e-3))
	noisy := RunNoisy(PaperConfig(2, 12, 1e-3), 42, 0.05)
	if math.Abs(noisy.ConcurrentSec-base.ConcurrentSec)/base.ConcurrentSec > 0.15 {
		t.Fatalf("5%% noise moved ct from %g to %g", base.ConcurrentSec, noisy.ConcurrentSec)
	}
}

func TestFromDeploymentPaperFiles(t *testing.T) {
	cfg, err := FromDeployment(PaperConfig(2, 2, 1e-3),
		mconfig.PaperMlink(), mconfig.PaperConfig(), "mainprog")
	if err != nil {
		t.Fatal(err)
	}
	if !cfg.Perpetual || cfg.MaxLoad != 1 {
		t.Fatalf("deployment rule not applied: %+v", cfg)
	}
	if len(cfg.LociNames) != 5 || cfg.LociNames[0] != "diplice.sen.cwi.nl" {
		t.Fatalf("loci = %v", cfg.LociNames)
	}
	r := Run(cfg)
	if r.Workers != 5 {
		t.Fatalf("workers = %d", r.Workers)
	}
	// With only five locus machines and a master, no more than six task
	// instances can be simultaneously alive.
	if r.PeakMachines > 6 {
		t.Fatalf("peak = %d, want <= 6 (5 loci + master)", r.PeakMachines)
	}
}

func TestFromDeploymentParallelBundling(t *testing.T) {
	ml := "{task * {perpetual} {load 64}}"
	cfg, err := FromDeployment(PaperConfig(2, 3, 1e-3), ml, mconfig.PaperConfig(), "mainprog")
	if err != nil {
		t.Fatal(err)
	}
	r := Run(cfg)
	if r.Forks != 0 || r.PeakMachines != 1 {
		t.Fatalf("bundled run: forks=%d peak=%d, want 0/1", r.Forks, r.PeakMachines)
	}
}

func TestFromDeploymentErrors(t *testing.T) {
	base := PaperConfig(2, 1, 1e-3)
	if _, err := FromDeployment(base, "{bad", mconfig.PaperConfig(), "mainprog"); err == nil {
		t.Error("bad mlink accepted")
	}
	if _, err := FromDeployment(base, mconfig.PaperMlink(), "{bad", "mainprog"); err == nil {
		t.Error("bad config accepted")
	}
	if _, err := FromDeployment(base, mconfig.PaperMlink(), mconfig.PaperConfig(), "ghost"); err == nil {
		t.Error("unknown task accepted")
	}
}

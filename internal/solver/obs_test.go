package solver

import (
	"strings"
	"testing"
	"time"

	"repro/internal/core"
	"repro/internal/grid"
	"repro/internal/obs"
)

// TestObservedEventCountsMatchFaultAccounting is the acceptance check of the
// observability layer: the protocol events recorded during a faulty
// concurrent run must agree exactly with the Output.Faults accounting the
// run reports. KindCount totals are drop-proof, so the equalities hold even
// if the ring were to wrap.
func TestObservedEventCountsMatchFaultAccounting(t *testing.T) {
	rec := obs.NewRecorder(0)
	p := Params{Root: 2, Level: 2, Tol: 1e-3}
	p.Retries = 5
	p.WorkerDeadline = 5 * time.Second
	p.Faults = core.PlanFaults(time.Hour,
		core.FaultPanicPreRead, core.FaultNone, core.FaultHang, core.FaultCorrupt, core.FaultPanic)
	p.Obs = rec

	out, err := Concurrent(p)
	if err != nil {
		t.Fatal(err)
	}
	fs := out.Faults
	check := func(k obs.Kind, want int, what string) {
		t.Helper()
		if got := rec.KindCount(k); got != uint64(want) {
			t.Errorf("%v = %d, want %d (%s)", k, got, want, what)
		}
	}
	check(obs.KWorkerCreate, fs.Workers, "Output.Faults.Workers")
	check(obs.KJobDispatch, fs.Workers, "one dispatch per created worker")
	check(obs.KWorkerDeath, fs.Deaths, "Output.Faults.Deaths")
	check(obs.KJobRetry, fs.Retries, "Output.Faults.Retries")
	check(obs.KJobAbandon, fs.Abandoned, "Output.Faults.Abandoned")
	check(obs.KFallback, fs.Fallbacks, "Output.Faults.Fallbacks")
	fam := grid.Family(p.Root, p.Level)
	check(obs.KJobResult, len(fam), "one accepted result per grid")
	check(obs.KPoolCreate, 1, "single pool")
	check(obs.KRendezvousBegin, 1, "single rendezvous")
	check(obs.KRendezvousEnd, 1, "single rendezvous")
	if rec.Dropped() != 0 {
		t.Errorf("dropped %d events with the default ring", rec.Dropped())
	}

	// The rendezvous end event must carry the final (workers, deaths) pair.
	for _, e := range rec.Events() {
		if e.Kind == obs.KRendezvousEnd {
			if e.A != int64(fs.Workers) || e.B != int64(fs.Deaths) {
				t.Errorf("rendezvous end (%d,%d), want (%d,%d)", e.A, e.B, fs.Workers, fs.Deaths)
			}
		}
	}

	// Every family grid must have fed its per-grid subsolve histogram.
	for _, g := range fam {
		h := rec.Histogram("solver.subsolve." + g.String() + ".us")
		if h.Count() < 1 {
			t.Errorf("no subsolve duration recorded for %v", g)
		}
	}

	// The live events must render as a parseable, chronological paper trace.
	var sb strings.Builder
	if err := rec.WriteTrace(&sb); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(sb.String(), "-> ") {
		t.Fatal("trace export is missing paper-format entries")
	}
}

// TestObservedFallbackEvent: a job that exhausts its retries and degrades to
// a master-local subsolve must record exactly one fallback activation.
func TestObservedFallbackEvent(t *testing.T) {
	rec := obs.NewRecorder(0)
	p := Params{Root: 2, Level: 1, Tol: 1e-3}
	p.Retries = 1
	p.Fallback = true
	p.Faults = core.PlanFaults(0,
		core.FaultPanic, core.FaultNone, core.FaultNone, core.FaultPanic)
	p.Obs = rec
	out, err := Concurrent(p)
	if err != nil {
		t.Fatal(err)
	}
	if out.Faults.Fallbacks != 1 {
		t.Fatalf("fallbacks = %d, want 1", out.Faults.Fallbacks)
	}
	if got := rec.KindCount(obs.KFallback); got != 1 {
		t.Fatalf("KFallback count = %d, want 1", got)
	}
}

package solver

import (
	"testing"

	"repro/internal/core"
	"repro/internal/obs"
)

// TestStealStormAccounting forces steals — every grid is piled onto
// executor 0's deque while three idle executors sit next to it — and
// asserts the exact steal accounting three ways: scheduler stats, the
// solver.steals counter, and the drop-proof solver.steal event tally all
// agree, and the stolen work histogram saw exactly one sample per steal.
// The output must still be bit-identical to the sequential run. Scheduling
// decides how many steals happen, so the run is repeated until at least
// one occurs (on any host a multi-grid family with three idle thieves
// steals almost immediately).
func TestStealStormAccounting(t *testing.T) {
	lowerParMins(t)
	saved := stealPlace
	stealPlace = func(executors int, weights []float64) [][]int {
		queues := make([][]int, executors)
		for i := range weights {
			queues[0] = append(queues[0], i)
		}
		return queues
	}
	t.Cleanup(func() { stealPlace = saved })

	base := Params{Root: 2, Level: 2, Tol: 1e-3, CoresPerWorker: 1}
	ref, err := Sequential(base)
	if err != nil {
		t.Fatal(err)
	}
	want := hashOutput(t, ref)

	for _, sched := range []Schedule{ScheduleSteal, ScheduleStealElastic} {
		t.Run(sched.String(), func(t *testing.T) {
			for attempt := 0; attempt < 5; attempt++ {
				rec := obs.NewRecorder(4096)
				p := base
				p.Schedule = sched
				p.Executors = 4
				p.StealSeed = int64(17 + attempt)
				p.Obs = rec

				out, err := Concurrent(p)
				if err != nil {
					t.Fatal(err)
				}
				if got := hashOutput(t, out); got != want {
					t.Fatal("storm output differs from sequential reference")
				}

				steals := int64(out.Sched.Steals)
				if got := rec.Counter("solver.steals").Value(); got != steals {
					t.Fatalf("solver.steals counter = %d, Sched.Steals = %d", got, steals)
				}
				if got := int64(rec.KindCount(obs.KSteal)); got != steals {
					t.Fatalf("solver.steal events = %d, Sched.Steals = %d", got, steals)
				}
				if got := rec.Histogram("solver.steal.mc").Count(); got != steals {
					t.Fatalf("solver.steal.mc samples = %d, Sched.Steals = %d", got, steals)
				}
				if got := int64(rec.KindCount(obs.KTeamResize)); got != int64(out.Sched.Resizes) {
					t.Fatalf("linalg.team.resize events = %d, Sched.Resizes = %d", got, out.Sched.Resizes)
				}
				if got := rec.Histogram("linalg.team.resize.us").Count(); got != int64(out.Sched.Resizes) {
					t.Fatalf("resize.us samples = %d, Sched.Resizes = %d", got, out.Sched.Resizes)
				}
				if out.Sched.Resizes > out.Sched.Donations {
					t.Fatalf("Resizes %d > Donations %d", out.Sched.Resizes, out.Sched.Donations)
				}
				if sched == ScheduleSteal && out.Sched.Donations != 0 {
					t.Fatalf("non-elastic schedule recorded %d donations", out.Sched.Donations)
				}
				if steals > 0 {
					return // storm observed and accounted exactly
				}
			}
			t.Fatal("no steal occurred in 5 storm attempts")
		})
	}
}

// TestStealGuardrail sets the cost-model floor above every grid's modelled
// work: thieves must refuse all of it, so the pile on executor 0 is solved
// single-file by its owner — stealing sequentialized away by the model,
// with zero steal events.
func TestStealGuardrail(t *testing.T) {
	lowerParMins(t)
	saved := stealPlace
	stealPlace = func(executors int, weights []float64) [][]int {
		queues := make([][]int, executors)
		for i := range weights {
			queues[0] = append(queues[0], i)
		}
		return queues
	}
	t.Cleanup(func() { stealPlace = saved })

	base := Params{Root: 2, Level: 2, Tol: 1e-3, CoresPerWorker: 1}
	ref, err := Sequential(base)
	if err != nil {
		t.Fatal(err)
	}
	want := hashOutput(t, ref)

	rec := obs.NewRecorder(1024)
	p := base
	p.Schedule = ScheduleSteal
	p.Executors = 4
	p.StealMinMc = 1e18 // above any modelled grid cost
	p.Obs = rec
	out, err := Concurrent(p)
	if err != nil {
		t.Fatal(err)
	}
	if got := hashOutput(t, out); got != want {
		t.Fatal("guardrail output differs from sequential reference")
	}
	if out.Sched.Steals != 0 || rec.KindCount(obs.KSteal) != 0 {
		t.Fatalf("guardrail leaked %d steals (%d events)", out.Sched.Steals, rec.KindCount(obs.KSteal))
	}
}

// TestStealValidate pins the parameter surface: fault injection is the
// pool schedule's domain, and unknown schedules are rejected.
func TestStealValidate(t *testing.T) {
	p := Params{Root: 2, Level: 1, Tol: 1e-3, Schedule: ScheduleSteal}
	p.Faults = core.NewFaultInjector(1, 0, 0.5, 0, 0, 0)
	if _, err := Concurrent(p); err == nil {
		t.Error("Concurrent accepted fault injection on the steal schedule")
	}
	p = Params{Root: 2, Level: 1, Tol: 1e-3, Schedule: Schedule(99)}
	if _, err := Concurrent(p); err == nil {
		t.Error("Concurrent accepted unknown schedule")
	}
	p = Params{Root: 2, Level: 1, Tol: 1e-3, Executors: -1}
	if _, err := Concurrent(p); err == nil {
		t.Error("Concurrent accepted negative executor count")
	}
}

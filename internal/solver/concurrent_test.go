package solver

import (
	"runtime"
	"testing"

	"repro/internal/pde"
)

// TestConcurrentMatchesSequential is the reproduction of the paper's §6
// claim: "These are written to a file and are exactly the same as in the
// sequential version." Combination order is fixed to family order, so the
// concurrent output must be bit-for-bit identical.
func TestConcurrentMatchesSequential(t *testing.T) {
	for _, tc := range []struct {
		level int
		tol   float64
	}{
		{0, 1e-3},
		{1, 1e-3},
		{2, 1e-3},
		{3, 1e-3},
		{2, 1e-4},
	} {
		p := Params{Root: 2, Level: tc.level, Tol: tc.tol}
		seq, err := Sequential(p)
		if err != nil {
			t.Fatalf("sequential level %d: %v", tc.level, err)
		}
		conc, err := Concurrent(p)
		if err != nil {
			t.Fatalf("concurrent level %d: %v", tc.level, err)
		}
		if len(seq.Results) != len(conc.Results) {
			t.Fatalf("level %d: %d vs %d results", tc.level, len(seq.Results), len(conc.Results))
		}
		for i := range seq.Results {
			if seq.Results[i].Grid != conc.Results[i].Grid {
				t.Fatalf("level %d result %d: grid %v vs %v", tc.level, i, seq.Results[i].Grid, conc.Results[i].Grid)
			}
			for j := range seq.Results[i].U {
				if seq.Results[i].U[j] != conc.Results[i].U[j] {
					t.Fatalf("level %d grid %v: u[%d] differs: %g vs %g",
						tc.level, seq.Results[i].Grid, j, seq.Results[i].U[j], conc.Results[i].U[j])
				}
			}
		}
		for j := range seq.Combined.V {
			if seq.Combined.V[j] != conc.Combined.V[j] {
				t.Fatalf("level %d: combined[%d] differs: %g vs %g",
					tc.level, j, seq.Combined.V[j], conc.Combined.V[j])
			}
		}
	}
}

func TestConcurrentMatchesSequentialManufactured(t *testing.T) {
	prob := pde.ManufacturedProblem(1, 0.5, 0.05)
	p := Params{Root: 2, Level: 2, Tol: 1e-4, Problem: prob, TEnd: 0.1}
	seq, err := Sequential(p)
	if err != nil {
		t.Fatal(err)
	}
	conc, err := Concurrent(p)
	if err != nil {
		t.Fatal(err)
	}
	if d := seq.Combined.MaxDiff(conc.Combined); d != 0 {
		t.Fatalf("combined fields differ by %g, want exact equality", d)
	}
}

func TestConcurrentUsesParallelism(t *testing.T) {
	if runtime.GOMAXPROCS(0) < 2 {
		t.Skip("needs >= 2 CPUs")
	}
	// Smoke check only: the concurrent version finishes and produces the
	// right number of per-grid results while running workers as separate
	// goroutines (concurrency itself is asserted in core's tests).
	out, err := Concurrent(Params{Root: 2, Level: 3, Tol: 1e-3})
	if err != nil {
		t.Fatal(err)
	}
	if len(out.Results) != 7 {
		t.Fatalf("results = %d, want 7", len(out.Results))
	}
}

func TestConcurrentValidatesParams(t *testing.T) {
	if _, err := Concurrent(Params{Root: 0, Level: 1, Tol: 1e-3}); err == nil {
		t.Fatal("invalid params accepted")
	}
}

package solver

import (
	"fmt"
	"runtime"
	"sync"
	"sync/atomic"

	"repro/internal/core"
	"repro/internal/grid"
	"repro/internal/linalg"
	"repro/internal/obs"
	"repro/internal/rosenbrock"
	"repro/internal/workmodel"
)

// Schedule selects the coordination strategy of the concurrent driver.
type Schedule int

const (
	// SchedulePool is the paper's restructuring: a static master/worker
	// pool, one worker per grid, cores apportioned up front by the
	// workmodel. The only schedule that supports fault injection,
	// retries, and graceful degradation.
	SchedulePool Schedule = iota
	// ScheduleSteal runs a deque-per-executor work-stealing scheduler:
	// grids are placed by the cost model (LPT), and an executor whose
	// deque runs dry steals queued grids from seeded victims.
	ScheduleSteal
	// ScheduleStealElastic is ScheduleSteal plus elastic team cores: an
	// executor that runs out of work donates its cores to the busiest
	// running neighbor, whose linalg.Team grows at its next dispatch
	// boundary.
	ScheduleStealElastic
)

// String names the schedule for benches and flags.
func (s Schedule) String() string {
	switch s {
	case SchedulePool:
		return "pool"
	case ScheduleSteal:
		return "steal"
	case ScheduleStealElastic:
		return "steal+elastic"
	}
	return fmt.Sprintf("schedule(%d)", int(s))
}

// ParseSchedule maps a flag value to a Schedule.
func ParseSchedule(s string) (Schedule, error) {
	switch s {
	case "pool":
		return SchedulePool, nil
	case "steal":
		return ScheduleSteal, nil
	case "steal+elastic", "elastic":
		return ScheduleStealElastic, nil
	}
	return 0, fmt.Errorf("solver: unknown schedule %q (want pool, steal, steal+elastic)", s)
}

// SchedStats accounts one work-stealing run.
type SchedStats struct {
	// Executors is the number of executor goroutines the run used.
	Executors int
	// Steals counts queued grids taken by a non-owner executor.
	Steals int
	// Donations counts exiting executors that handed their cores to a
	// running neighbor (elastic schedule only).
	Donations int
	// Resizes counts elastic team resizes actually applied at a
	// dispatch boundary (a donation whose target finishes first is
	// dropped, so Resizes <= Donations).
	Resizes int
}

// Metric names of the work-stealing scheduler.
const (
	stealCtrName    = "solver.steals"
	stealMcHistName = "solver.steal.mc"
	resizeHistName  = "linalg.team.resize.us"
)

// resizeObs adapts the run's recorder to linalg.ResizeObserver: each
// applied elastic resize is counted, emitted as a linalg.team.resize
// event, and its SetTarget-to-application latency recorded.
type resizeObs struct {
	rec   *obs.Recorder
	actor string
	count *atomic.Int64
}

func (o *resizeObs) ObserveResize(us int64, from, to int) {
	o.count.Add(1)
	if o.rec != nil {
		o.rec.Emit(obs.KTeamResize, o.actor, "", int64(from), int64(to))
		o.rec.Histogram(resizeHistName).Observe(us)
	}
}

// stealPlace seeds the per-executor deques; a test hook replaces it to
// force pathological placements (the steal-storm test piles every grid
// onto executor 0).
var stealPlace = workmodel.PlaceLPT

// stealRun is the shared state of one work-stealing run.
type stealRun struct {
	p       Params
	fam     []grid.Grid
	weights []float64
	deques  []*core.Deque[int]
	teams   []*linalg.Team
	actors  []string

	// mu guards the elastic-donation ledger.
	mu      sync.Mutex
	cores   []int // cores currently owned by each executor
	running []int // family index each executor is solving, -1 when idle
	done    []bool

	steals    atomic.Int64
	donations atomic.Int64
	resizes   atomic.Int64

	results []Result // indexed by family position; disjoint writers
	errOnce sync.Once
	err     error
	failed  atomic.Int32
}

// concurrentSteal runs the family under the work-stealing scheduler: E
// executors, each owning a deque seeded by cost-model LPT placement in
// ascending-weight order (the owner pops its heaviest grid first, thieves
// steal the lightest — the cheapest work to move). Initial placement is
// cost-model-guided, so with an accurate model steals are the exception:
// they happen exactly when reality diverges from the model or when the
// elastic schedule frees cores early. Results are recorded by family
// index and combined in family order on a master team, so the output is
// bit-for-bit identical to Sequential and to the pool schedule at any
// executor count, team size, and steal pattern.
func concurrentSteal(p Params) (*Output, error) {
	fam := grid.Family(p.Root, p.Level)
	model := workmodel.Paper()
	weights := make([]float64, len(fam))
	for i, g := range fam {
		weights[i] = model.GridWork(g, p.Tol)
	}

	procs := runtime.GOMAXPROCS(0)
	e := p.Executors
	if e <= 0 {
		e = procs
	}
	if e > len(fam) {
		e = len(fam)
	}
	if e < 1 {
		e = 1
	}

	sr := &stealRun{
		p:       p,
		fam:     fam,
		weights: weights,
		deques:  make([]*core.Deque[int], e),
		teams:   make([]*linalg.Team, e),
		actors:  make([]string, e),
		cores:   make([]int, e),
		running: make([]int, e),
		done:    make([]bool, e),
		results: make([]Result, len(fam)),
	}

	// Cost-model-guided placement, then a core budget per executor
	// proportional to its queue's modelled work (mirroring the pool
	// schedule's per-grid apportionment at executor granularity).
	queues := stealPlace(e, weights)
	if p.CoresPerWorker > 0 {
		for i := range sr.cores {
			sr.cores[i] = p.CoresPerWorker
		}
	} else {
		execWork := make([]float64, e)
		for i, q := range queues {
			for _, task := range q {
				execWork[i] += weights[task]
			}
		}
		copy(sr.cores, workmodel.Allocate(procs, execWork))
	}
	for i, q := range queues {
		sr.deques[i] = core.NewDeque[int](len(fam))
		for _, task := range q {
			sr.deques[i].Push(task)
		}
		sr.running[i] = -1
		sr.actors[i] = fmt.Sprintf("steal-%d", i)
		// Teams are created up front, owner-side of nothing yet: the
		// executor goroutine inherits ownership at spawn, and donors
		// only ever touch the cross-goroutine-safe SetTarget.
		sr.teams[i] = p.newTeam(sr.cores[i])
		sr.teams[i].SetResizeObserver(&resizeObs{rec: p.Obs, actor: sr.actors[i], count: &sr.resizes})
	}

	var wg sync.WaitGroup
	wg.Add(e)
	for i := 0; i < e; i++ {
		go func(i int) {
			defer wg.Done()
			sr.executor(i)
		}(i)
	}
	wg.Wait()
	if sr.err != nil {
		return nil, sr.err
	}

	team := p.newTeam(p.teamSize())
	defer team.Close()
	out, err := combine(p, sr.results, team)
	if err != nil {
		return nil, err
	}
	out.Sched = SchedStats{
		Executors: e,
		Steals:    int(sr.steals.Load()),
		Donations: int(sr.donations.Load()),
		Resizes:   int(sr.resizes.Load()),
	}
	return out, nil
}

// executor is the body of one work-stealing executor: pop the own deque
// (heaviest first), steal when dry, and on exit donate cores (elastic
// schedule). Each executor owns its workspace and team for the whole run,
// so solver buffers are never shared.
func (sr *stealRun) executor(e int) {
	team := sr.teams[e]
	defer team.Close()
	ws := rosenbrock.NewWorkspace()
	ws.SetTeam(team)
	p := sr.p

	// Seeded victim-probe rotation (xorshift64*; must be nonzero).
	rng := uint64(p.StealSeed)*0x9E3779B97F4A7C15 + uint64(e)*0xBF58476D1CE4E5B9 + 1

	for sr.failed.Load() == 0 {
		idx, ok := sr.deques[e].Pop()
		if !ok {
			idx, ok = sr.steal(e, &rng)
		}
		if !ok {
			break
		}
		sr.setRunning(e, idx)
		res, err := timedSubsolve(p.Obs, sr.actors[e], sr.fam[idx], p.Problem, p.Tol, p.TEnd, p.Solver, ws, team.Size())
		if err != nil {
			sr.fail(err)
			break
		}
		sr.results[idx] = res
	}
	sr.exit(e)
}

// steal probes the other executors' deques in a seeded rotation and takes
// the front (lightest) grid of the first victim that has one above the
// cost-model guardrail. The predicate runs under the victim deque's lock,
// so the inspected grid cannot change hands between the check and the
// take.
func (sr *stealRun) steal(e int, rng *uint64) (int, bool) {
	n := len(sr.deques)
	if n == 1 {
		return 0, false
	}
	x := *rng
	x ^= x << 13
	x ^= x >> 7
	x ^= x << 17
	*rng = x
	start := int(x % uint64(n))
	for k := 0; k < n; k++ {
		v := (start + k) % n
		if v == e {
			continue
		}
		idx, ok := sr.deques[v].StealIf(func(task int) bool {
			return sr.weights[task] >= sr.p.StealMinMc
		})
		if !ok {
			continue
		}
		sr.steals.Add(1)
		if rec := sr.p.Obs; rec != nil {
			rec.Counter(stealCtrName).Add(1)
			rec.Histogram(stealMcHistName).Observe(int64(sr.weights[idx]))
			rec.Emit(obs.KSteal, sr.actors[e], sr.actors[v], int64(idx), int64(sr.weights[idx]))
		}
		return idx, true
	}
	return 0, false
}

func (sr *stealRun) setRunning(e, idx int) {
	sr.mu.Lock()
	sr.running[e] = idx
	sr.mu.Unlock()
}

func (sr *stealRun) fail(err error) {
	sr.errOnce.Do(func() { sr.err = err })
	sr.failed.Store(1)
}

// exit marks executor e done and, on the elastic schedule, donates its
// cores to the busiest still-running neighbor — the executor solving the
// heaviest grid (ties to the lowest index). The neighbor's team grows at
// its next kernel-dispatch boundary; chunk-aligned ranges are recomputed
// there, so the resize cannot change results. Exits take the same lock,
// so a donor that received cores earlier passes the whole accumulated
// budget on (cascading donation).
func (sr *stealRun) exit(e int) {
	sr.mu.Lock()
	defer sr.mu.Unlock()
	sr.done[e] = true
	sr.running[e] = -1
	if sr.p.Schedule != ScheduleStealElastic || sr.cores[e] <= 0 {
		return
	}
	best, bestW := -1, -1.0
	for i := range sr.done {
		if i == e || sr.done[i] || sr.running[i] < 0 {
			continue
		}
		if w := sr.weights[sr.running[i]]; w > bestW {
			best, bestW = i, w
		}
	}
	if best < 0 {
		return
	}
	sr.cores[best] += sr.cores[e]
	sr.cores[e] = 0
	target := sr.cores[best]
	if target > linalg.MaxTeam {
		target = linalg.MaxTeam
	}
	sr.donations.Add(1)
	sr.teams[best].SetTarget(target)
}

package solver

import (
	"errors"
	"testing"
	"time"

	"repro/internal/core"
)

// assertBitForBit checks the paper's §6 invariant under faults: retried and
// fallback jobs recompute deterministically and are combined in family
// order, so a faulty run's output must equal the sequential run's exactly.
func assertBitForBit(t *testing.T, seq, conc *Output) {
	t.Helper()
	if len(seq.Results) != len(conc.Results) {
		t.Fatalf("%d vs %d results", len(seq.Results), len(conc.Results))
	}
	for i := range seq.Results {
		if seq.Results[i].Grid != conc.Results[i].Grid {
			t.Fatalf("result %d: grid %v vs %v", i, seq.Results[i].Grid, conc.Results[i].Grid)
		}
		for j := range seq.Results[i].U {
			if seq.Results[i].U[j] != conc.Results[i].U[j] {
				t.Fatalf("grid %v: u[%d] differs: %g vs %g",
					seq.Results[i].Grid, j, seq.Results[i].U[j], conc.Results[i].U[j])
			}
		}
	}
	if d := seq.Combined.MaxDiff(conc.Combined); d != 0 {
		t.Fatalf("combined fields differ by %g, want exact equality", d)
	}
}

func TestConcurrentWithInjectedFaultsMatchesSequential(t *testing.T) {
	// One worker of each failure mode — a pre-read panic, a hang past the
	// deadline, a corrupt result, a mid-work panic — in a family of 5
	// grids. Every job must complete via retry and the output must stay
	// bit-for-bit identical to the sequential run.
	p := Params{Root: 2, Level: 2, Tol: 1e-3}
	seq, err := Sequential(p)
	if err != nil {
		t.Fatal(err)
	}
	// The deadline must exceed any honest Subsolve time (race-detector
	// slowdown included) yet bound the test: the hung worker is abandoned
	// at the deadline and the run completes without its result.
	p.Retries = 5
	p.WorkerDeadline = 5 * time.Second
	p.Faults = core.PlanFaults(time.Hour,
		core.FaultPanicPreRead, core.FaultNone, core.FaultHang, core.FaultCorrupt, core.FaultPanic)
	conc, err := Concurrent(p)
	if err != nil {
		t.Fatal(err)
	}
	assertBitForBit(t, seq, conc)
	fs := conc.Faults
	if fs.Failures != 4 || fs.Retries != 4 || fs.Workers != 9 {
		t.Fatalf("faults = %+v, want 4 failures, 4 retries, 9 workers", fs)
	}
	if fs.Abandoned != 1 {
		t.Fatalf("faults = %+v, want 1 abandoned (the hung worker)", fs)
	}
	if fs.Deaths != fs.Workers {
		t.Fatalf("deaths %d != workers %d", fs.Deaths, fs.Workers)
	}
	if fs.Fallbacks != 0 {
		t.Fatalf("faults = %+v, want no fallbacks", fs)
	}
}

func TestConcurrentFallbackCompletesBitForBit(t *testing.T) {
	// The first job's worker panics on the first attempt and again on its
	// only retry (draw index 3: indexes 0..2 are the initial submissions),
	// so the job exhausts its budget and degrades to a master-local
	// Subsolve — still bit-for-bit identical.
	p := Params{Root: 2, Level: 1, Tol: 1e-3}
	seq, err := Sequential(p)
	if err != nil {
		t.Fatal(err)
	}
	p.Retries = 1
	p.Fallback = true
	p.Faults = core.PlanFaults(0,
		core.FaultPanic, core.FaultNone, core.FaultNone, core.FaultPanic)
	conc, err := Concurrent(p)
	if err != nil {
		t.Fatal(err)
	}
	assertBitForBit(t, seq, conc)
	fs := conc.Faults
	if fs.Fallbacks != 1 {
		t.Fatalf("faults = %+v, want 1 fallback", fs)
	}
	if fs.Failures != 2 || fs.Retries != 1 {
		t.Fatalf("faults = %+v, want 2 failures / 1 retry", fs)
	}
	if fs.Deaths != fs.Workers {
		t.Fatalf("deaths %d != workers %d", fs.Deaths, fs.Workers)
	}
}

func TestConcurrentFailureBudgetError(t *testing.T) {
	// Every worker attempt panics and the run tolerates a single failure:
	// without Fallback the run must abort with BudgetExhausted rather than
	// return a partial combination.
	p := Params{
		Root: 2, Level: 1, Tol: 1e-3,
		Retries:       3,
		FailureBudget: 1,
		Faults:        core.NewFaultInjector(1, 0, 1, 0, 0, 0),
	}
	_, err := Concurrent(p)
	var be core.BudgetExhausted
	if !errors.As(err, &be) {
		t.Fatalf("err = %v, want BudgetExhausted", err)
	}
	if be.Budget != 1 {
		t.Fatalf("budget = %d, want 1", be.Budget)
	}
}

func TestConcurrentJobFailedWithoutFallback(t *testing.T) {
	// Retry exhaustion without Fallback must surface the JobFailed error
	// instead of silently dropping a grid from the combination.
	p := Params{
		Root: 2, Level: 1, Tol: 1e-3,
		Retries: 0,
		Faults:  core.PlanFaults(0, core.FaultPanic),
	}
	_, err := Concurrent(p)
	var jf *core.JobFailed
	if !errors.As(err, &jf) {
		t.Fatalf("err = %v, want JobFailed", err)
	}
	if _, ok := jf.Job.(Job); !ok {
		t.Fatalf("JobFailed.Job = %T, want solver.Job", jf.Job)
	}
}

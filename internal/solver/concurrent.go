package solver

import (
	"fmt"

	"repro/internal/core"
	"repro/internal/grid"
	"repro/internal/pde"
	"repro/internal/rosenbrock"
)

// Job is the unit of information a worker needs to do its job: which grid
// to solve and with what parameters. The master writes it to its own
// output port; the coordinator's stream carries it to the worker.
type Job struct {
	Grid grid.Grid
	Prob *pde.Problem
	Tol  float64
	TEnd float64
	Lin  rosenbrock.LinearSolver
}

// jobResult is the unit a worker writes back through the KK stream to the
// master's dataport.
type jobResult struct {
	res Result
	err error
}

// Concurrent runs the restructured application: the master performs all
// the computation of the sequential version except the Subsolve work,
// which it delegates to a pool of workers under the master/worker protocol
// of internal/core. Workers run concurrently (as goroutines — MANIFOLD
// threads); the results are combined in the same family order as the
// sequential version, so the output is bit-for-bit identical.
func Concurrent(p Params) (*Output, error) {
	p = p.withDefaults()
	if err := p.Validate(); err != nil {
		return nil, err
	}
	fam := grid.Family(p.Root, p.Level)
	index := make(map[grid.Grid]int, len(fam))
	for i, g := range fam {
		index[g] = i
	}
	results := make([]Result, len(fam))
	var masterErr error

	core.Run(func(m *core.Master) {
		// Step 2: initialization work happened in the caller (parameter
		// validation, family layout). Step 3: one pool for all grids of
		// the nested loop, one worker per grid.
		m.CreatePool()
		for _, g := range fam {
			m.CreateWorker()
			m.Send(Job{Grid: g, Prob: p.Problem, Tol: p.Tol, TEnd: p.TEnd, Lin: p.Solver})
		}
		// Step 3f: collect results (they arrive in completion order).
		for range fam {
			switch r := m.ReadResult().(type) {
			case jobResult:
				if r.err != nil {
					if masterErr == nil {
						masterErr = r.err
					}
					continue
				}
				i, ok := index[r.res.Grid]
				if !ok {
					masterErr = fmt.Errorf("solver: result for unexpected grid %v", r.res.Grid)
					continue
				}
				results[i] = r.res
			case core.WorkerFailure:
				if masterErr == nil {
					masterErr = r
				}
			default:
				masterErr = fmt.Errorf("solver: unexpected unit %T on dataport", r)
			}
		}
		// Steps 3g/3h and 4.
		m.Rendezvous()
		m.Finished()
	}, func(w *core.Worker) {
		// Worker steps 1-3; death_worker (step 4) is raised by the
		// protocol wrapper when this function returns. Each worker owns
		// its integrator workspace — solver buffers are never shared
		// across goroutines.
		ws := rosenbrock.NewWorkspace()
		job := w.Read().(Job)
		res, err := SubsolveInto(job.Grid, job.Prob, job.Tol, job.TEnd, job.Lin, ws)
		w.Write(jobResult{res: res, err: err})
	})

	if masterErr != nil {
		return nil, masterErr
	}
	// Step 5: the master's final sequential computation — the
	// prolongation (combination) work.
	return combine(p, results)
}

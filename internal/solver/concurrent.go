package solver

import (
	"errors"
	"fmt"
	"runtime"
	"sort"

	"repro/internal/core"
	"repro/internal/grid"
	"repro/internal/obs"
	"repro/internal/pde"
	"repro/internal/rosenbrock"
	"repro/internal/workmodel"
)

// Job is the unit of information a worker needs to do its job: which grid
// to solve and with what parameters. The master writes it to its own
// output port; the coordinator's stream carries it to the worker.
type Job struct {
	Grid grid.Grid
	Prob *pde.Problem
	Tol  float64
	TEnd float64
	Lin  rosenbrock.LinearSolver
	// Cores sizes the worker's intra-grid linalg.Team (0 or 1 = serial).
	Cores int
}

// jobResult is the unit a worker writes back through the KK stream to the
// master's dataport.
type jobResult struct {
	res Result
	err error
}

// Concurrent runs the restructured application: the master performs all
// the computation of the sequential version except the Subsolve work,
// which it delegates to a pool of workers under the master/worker protocol
// of internal/core. Workers run concurrently (as goroutines — MANIFOLD
// threads); the results are combined in the same family order as the
// sequential version, so the output is bit-for-bit identical.
//
// The run is fault tolerant under the Params policy: failed workers
// (panics, missed deadlines, corrupt results) have their jobs resubmitted
// to fresh workers within the retry budget, and — with Fallback — jobs
// that exhaust their retries are computed master-locally, so even a run
// that loses workers still completes with the sequential answer.
func Concurrent(p Params) (*Output, error) {
	p = p.withDefaults()
	if err := p.Validate(); err != nil {
		return nil, err
	}
	if p.Schedule != SchedulePool {
		return concurrentSteal(p)
	}
	fam := grid.Family(p.Root, p.Level)
	index := make(map[grid.Grid]int, len(fam))
	for i, g := range fam {
		index[g] = i
	}
	// The workmodel weights drive both decisions below: jobs are submitted
	// largest-grid-first so the critical-path grid starts at t=0 (the family
	// order would start it wherever the nested loop put it), and — when no
	// explicit CoresPerWorker is set — GOMAXPROCS is apportioned across the
	// workers proportional to grid cost, so the finest grids get the most
	// cores. Neither affects the output: results are recorded by grid and
	// combined in family order, and kernels are deterministic at any team
	// size.
	model := workmodel.Paper()
	weights := make([]float64, len(fam))
	for i, g := range fam {
		weights[i] = model.GridWork(g, p.Tol)
	}
	order := make([]int, len(fam))
	for i := range order {
		order[i] = i
	}
	sort.SliceStable(order, func(a, b int) bool {
		return weights[order[a]] > weights[order[b]]
	})
	var cores []int
	if p.CoresPerWorker > 0 {
		cores = make([]int, len(fam))
		for i := range cores {
			cores[i] = p.CoresPerWorker
		}
	} else {
		cores = workmodel.Allocate(runtime.GOMAXPROCS(0), weights)
	}
	results := make([]Result, len(fam))
	var masterErr error
	fallbacks := 0

	policy := core.Policy{
		Retries:        p.Retries,
		FailureBudget:  p.FailureBudget,
		WorkerDeadline: p.WorkerDeadline,
		Backoff:        p.Backoff,
		Injector:       p.Faults,
		Obs:            p.Obs,
		// A result that is not a jobResult (e.g. an injected CorruptUnit)
		// counts as a failed attempt and is retried; a jobResult carrying a
		// solver error is a deterministic application failure, which a
		// retry cannot fix, so it passes through to the master.
		Validate: func(u any) error {
			if _, ok := u.(jobResult); !ok {
				return fmt.Errorf("solver: unexpected unit %T on dataport", u)
			}
			return nil
		},
	}

	record := func(r jobResult) {
		if r.err != nil {
			if masterErr == nil {
				masterErr = r.err
			}
			return
		}
		i, ok := index[r.res.Grid]
		if !ok {
			if masterErr == nil {
				masterErr = fmt.Errorf("solver: result for unexpected grid %v", r.res.Grid)
			}
			return
		}
		results[i] = r.res
	}

	//vetsparse:ignore deadlines RunPolicy's coordination joins (Terminated/Wait) are bounded by pool deadline expiry and worker abandonment, not the request deadline
	stats := core.RunPolicy(func(m *core.Master) {
		// Step 2: initialization work happened in the caller (parameter
		// validation, family layout). Step 3: one pool for all grids of
		// the nested loop, one worker per grid — plus retry workers for
		// jobs whose worker was lost.
		pool := m.NewPool()
		for _, i := range order {
			pool.Submit(Job{Grid: fam[i], Prob: p.Problem, Tol: p.Tol, TEnd: p.TEnd, Lin: p.Solver, Cores: cores[i]})
		}
		// Step 3f: collect results (they arrive in completion order).
		for range fam {
			u, err := pool.Collect()
			if err == nil {
				record(u.(jobResult))
				continue
			}
			var jf *core.JobFailed
			if errors.As(err, &jf) && p.Fallback {
				// Graceful degradation: the job exhausted its retries, so
				// the master performs the Subsolve itself — the same
				// deterministic computation a worker would have run.
				if job, ok := jf.Job.(Job); ok {
					fallbacks++
					if p.Obs != nil {
						p.Obs.Emit(obs.KFallback, "Master", job.Grid.String(), int64(jf.ID), int64(jf.Attempts))
					}
					res, serr := timedSubsolve(p.Obs, "Master", job.Grid, job.Prob, job.Tol, job.TEnd, job.Lin, nil, 1)
					record(jobResult{res: res, err: serr})
					continue
				}
			}
			if masterErr == nil {
				masterErr = err
			}
		}
		// Steps 3g/3h and 4.
		m.Rendezvous()
		m.Finished()
	}, func(w *core.Worker) {
		// Worker steps 1-3; death_worker (step 4) is raised by the
		// protocol wrapper when this function returns. Each worker owns
		// its integrator workspace and its intra-grid team — solver
		// buffers are never shared across goroutines. The deferred Close
		// also runs when a fault injector panics the body mid-job.
		ws := rosenbrock.NewWorkspace()
		//vetsparse:ignore deadlines worker-side read: the master's deadline expiry abandons the worker and closes its port, which unsticks this read
		job := w.Read().(Job)
		team := p.newTeam(job.Cores)
		defer team.Close()
		ws.SetTeam(team)
		res, err := timedSubsolve(p.Obs, w.Process().Name(), job.Grid, job.Prob, job.Tol, job.TEnd, job.Lin, ws, team.Size())
		w.Write(jobResult{res: res, err: err})
	}, policy)

	if masterErr != nil {
		return nil, masterErr
	}
	// Step 5: the master's final computation — the prolongation
	// (combination) work, on a master-owned team now that the workers are
	// gone.
	team := p.newTeam(p.teamSize())
	defer team.Close()
	out, err := combine(p, results, team)
	if err != nil {
		return nil, err
	}
	out.Faults = FaultStats{
		Workers:   stats.Workers,
		Deaths:    stats.Deaths,
		Failures:  stats.Failures,
		Retries:   stats.Retries,
		Abandoned: stats.Abandoned,
		Fallbacks: fallbacks,
	}
	return out, nil
}

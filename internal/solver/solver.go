// Package solver is the Go port of the paper's legacy application: a
// sequential sparse-grid code for a time-dependent advection-diffusion
// problem. Its structure deliberately mirrors the schematized C program of
// §3 of the paper:
//
//	root  = refinement level of the coarsest grid   (argv[1])
//	level = additional refinement above root        (argv[2])
//	tol   = tolerance of the integrator             (argv[3])
//
//	initialization;
//	for lm = level-1 .. level
//	    for l = 0 .. lm
//	        subsolve(l, lm-l)        // the heavy computational work
//	prolongation onto the finest grid used
//
// Subsolve reads and writes data only of its own grid, which is exactly the
// concurrent property the paper's restructuring exploits; the concurrent
// driver in this package delegates the Subsolve calls to workers
// coordinated by the master/worker protocol of internal/core.
package solver

import (
	"fmt"
	"runtime"
	"time"

	"repro/internal/core"
	"repro/internal/grid"
	"repro/internal/linalg"
	"repro/internal/obs"
	"repro/internal/pde"
	"repro/internal/rosenbrock"
)

// DefaultTEnd is the integration horizon of the transport problem.
const DefaultTEnd = 0.25

// DefaultEvalCap bounds the refinement of the evaluation grid the sparse-
// grid combination is prolongated onto, so that paper-scale levels do not
// materialize astronomically fine uniform grids.
const DefaultEvalCap = 5

// Params mirrors the command line of the legacy program.
type Params struct {
	Root  int     // refinement level of the coarsest grid
	Level int     // additional refinement above the root level
	Tol   float64 // integrator tolerance (the paper uses 1.0e-3 and 1.0e-4)

	// TEnd is the end time of the simulation; 0 means DefaultTEnd.
	TEnd float64
	// Problem is the continuous problem; nil means pde.PaperProblem().
	Problem *pde.Problem
	// EvalCap caps the evaluation-grid refinement; 0 means DefaultEvalCap.
	EvalCap int
	// Solver selects the inner linear solver of the Rosenbrock stages;
	// the zero value is BiCGStab.
	Solver rosenbrock.LinearSolver

	// CoresPerWorker fixes the size of the intra-grid linalg.Team each
	// subsolve runs its kernels on. 0 (the default) auto-allocates: the
	// sequential driver uses all of GOMAXPROCS, and the concurrent driver
	// splits GOMAXPROCS across the family's workers proportional to the
	// workmodel grid cost, so the finest grids get the most cores. Results
	// are bit-for-bit identical at any setting.
	CoresPerWorker int

	// Schedule selects the concurrent coordination strategy: the static
	// master/worker pool (default), deque-per-executor work stealing, or
	// work stealing with elastic core donation (see Schedule). Outputs
	// are bit-for-bit identical across all three.
	Schedule Schedule
	// StealSeed seeds the victim-probe order of the work-stealing
	// executors, so a run's steal pattern is reproducible. Only the
	// pattern is affected — outputs are schedule-independent.
	StealSeed int64
	// StealMinMc is the cost-model guardrail of the work-stealing
	// schedules: a queued grid whose modelled work (workmodel
	// megacycles) is below it is left for its seeded owner — moving it
	// would cost more coordination than the work is worth. 0 disables
	// the guardrail.
	StealMinMc float64
	// Executors caps the executor count of the work-stealing schedules.
	// 0 (the default) uses min(GOMAXPROCS, family size).
	Executors int

	// Retries is the per-job retry budget of the concurrent driver: a job
	// whose worker fails (panic, deadline, corrupt result) is resubmitted
	// to a freshly created worker this many times before it is treated as
	// permanently failed.
	Retries int
	// FailureBudget caps the total failed worker attempts tolerated per
	// concurrent run; beyond it the run aborts. 0 means unlimited.
	FailureBudget int
	// WorkerDeadline bounds how long the master waits for any single
	// worker before abandoning it and retrying its job. 0 means no
	// deadline.
	WorkerDeadline time.Duration
	// Backoff, when non-nil, paces job resubmissions of the concurrent
	// driver with seeded jittered exponential delays instead of retrying
	// immediately (see core.Backoff).
	Backoff *core.Backoff
	// Faults, when non-nil, injects worker faults (panic, hang, corrupt)
	// into the concurrent run — tests and the sparsegrid -faults flag.
	Faults *core.FaultInjector
	// Fallback makes jobs that exhaust their retry budget degrade
	// gracefully to a master-local Subsolve call, so the combination still
	// completes bit-for-bit identical to the sequential run.
	Fallback bool
	// Obs, when non-nil, records run events (per-grid subsolve begin/end,
	// fallback activations, protocol events of the concurrent driver) and
	// per-grid subsolve duration histograms; nil (the default) costs
	// nothing.
	Obs *obs.Recorder
}

func (p Params) withDefaults() Params {
	if p.TEnd == 0 {
		p.TEnd = DefaultTEnd
	}
	if p.Problem == nil {
		p.Problem = pde.PaperProblem()
	}
	if p.EvalCap == 0 {
		p.EvalCap = DefaultEvalCap
	}
	return p
}

// Validate checks the parameters.
func (p Params) Validate() error {
	if p.Root < 1 {
		return fmt.Errorf("solver: root %d < 1 (need interior points on the coarsest grid)", p.Root)
	}
	if p.Level < 0 {
		return fmt.Errorf("solver: level %d < 0", p.Level)
	}
	if p.Tol <= 0 {
		return fmt.Errorf("solver: tolerance %g must be positive", p.Tol)
	}
	if p.CoresPerWorker < 0 {
		return fmt.Errorf("solver: cores per worker %d < 0", p.CoresPerWorker)
	}
	if p.Schedule < SchedulePool || p.Schedule > ScheduleStealElastic {
		return fmt.Errorf("solver: unknown schedule %d", p.Schedule)
	}
	if p.Schedule != SchedulePool && p.Faults != nil {
		return fmt.Errorf("solver: fault injection requires the pool schedule (the work-stealing executors have no retry protocol)")
	}
	if p.Executors < 0 {
		return fmt.Errorf("solver: executors %d < 0", p.Executors)
	}
	return nil
}

// teamSize resolves the intra-grid core budget of a single actor: an
// explicit CoresPerWorker wins, otherwise all of GOMAXPROCS.
func (p Params) teamSize() int {
	if p.CoresPerWorker > 0 {
		return p.CoresPerWorker
	}
	return runtime.GOMAXPROCS(0)
}

// imbalanceHistName is the metric fed with per-dispatch team load imbalance.
const imbalanceHistName = "linalg.team.imbalance.us"

// Metrics fed by fused-phase dispatches: wall-clock per dispatch and
// in-phase barrier counts, so `paperbench -scaling` can report the
// dispatch overhead directly.
const (
	phaseHistName   = "linalg.team.phase.us"
	phaseBarCtrName = "linalg.team.phase.barriers"
)

// phaseObs adapts the run's metric recorder to linalg.PhaseObserver.
type phaseObs struct {
	us       *obs.Histogram
	barriers *obs.Counter
}

func (o phaseObs) ObservePhase(us, barriers int64) {
	o.us.Observe(us)
	o.barriers.Add(barriers)
}

// newTeam creates a linalg.Team of the given size, wired to the run's
// imbalance histogram and phase metrics when observability is on. Callers
// own Close.
func (p Params) newTeam(size int) *linalg.Team {
	team := linalg.NewTeam(size)
	if p.Obs != nil {
		team.SetObserver(p.Obs.Histogram(imbalanceHistName))
		team.SetPhaseObserver(phaseObs{
			us:       p.Obs.Histogram(phaseHistName),
			barriers: p.Obs.Counter(phaseBarCtrName),
		})
	}
	return team
}

// EvalGrid returns the uniform grid the combination is evaluated on.
func (p Params) EvalGrid() grid.Grid {
	p = p.withDefaults()
	e := p.Level
	if e > p.EvalCap {
		e = p.EvalCap
	}
	return grid.Grid{Root: p.Root, L1: e, L2: e}
}

// Result is the outcome of one Subsolve call: the interior solution on one
// grid at TEnd, plus the cost statistics that calibrate the work model.
type Result struct {
	Grid  grid.Grid
	U     linalg.Vector
	Stats rosenbrock.Stats
}

// Subsolve performs the heavy computational work on grid g: it assembles
// the advection-diffusion discretization, integrates from 0 to tEnd with
// the adaptive Rosenbrock solver (updating and solving a linear system
// every stage) and returns the interior solution. It touches no state
// outside its own grid.
func Subsolve(g grid.Grid, p *pde.Problem, tol, tEnd float64) (Result, error) {
	return SubsolveWith(g, p, tol, tEnd, rosenbrock.BiCGStab)
}

// SubsolveWith is Subsolve with an explicit choice of inner linear solver.
func SubsolveWith(g grid.Grid, p *pde.Problem, tol, tEnd float64, lin rosenbrock.LinearSolver) (Result, error) {
	return SubsolveInto(g, p, tol, tEnd, lin, nil)
}

// SubsolveInto is SubsolveWith solving out of a reusable integrator
// workspace: the sequential driver passes one workspace across the whole
// grid family so per-grid solver buffers are recycled rather than
// reallocated; each concurrent worker owns its own. ws may be nil, which
// allocates a fresh workspace for this call.
func SubsolveInto(g grid.Grid, p *pde.Problem, tol, tEnd float64, lin rosenbrock.LinearSolver, ws *rosenbrock.Workspace) (Result, error) {
	return SubsolveOn(pde.NewDisc(g, p), tol, tEnd, lin, ws)
}

// SubsolveOn is SubsolveInto on a prebuilt discretization: the caller owns
// d and may reuse it (and the workspace) across integrations of the same
// signature — the serve-layer solver cache does exactly that, keeping the
// assembled matrices, the shifted-operator pattern, and the ILU factors of
// a (grid, solver) signature warm across requests. d must not be shared by
// concurrent integrations. Output is bit-for-bit identical to a fresh
// SubsolveInto at any team size.
func SubsolveOn(d *pde.Disc, tol, tEnd float64, lin rosenbrock.LinearSolver, ws *rosenbrock.Workspace) (Result, error) {
	u := d.InitialInterior()
	stats, err := rosenbrock.Integrate(d, u, 0, tEnd, rosenbrock.Config{Tol: tol, Solver: lin, Work: ws})
	if err != nil {
		return Result{}, fmt.Errorf("solver: subsolve %v: %w", d.G, err)
	}
	return Result{Grid: d.G, U: u, Stats: stats}, nil
}

// timedSubsolve is SubsolveInto instrumented for observability: it brackets
// the call with subsolve_begin/subsolve_end events and feeds the per-grid
// duration histogram "solver.subsolve.<grid>.us" plus the core-budget
// histogram "solver.subsolve.<grid>.cores". With rec == nil it is exactly
// SubsolveInto — no timestamps, no allocation.
func timedSubsolve(rec *obs.Recorder, actor string, g grid.Grid, p *pde.Problem, tol, tEnd float64, lin rosenbrock.LinearSolver, ws *rosenbrock.Workspace, cores int) (Result, error) {
	if rec == nil {
		return SubsolveInto(g, p, tol, tEnd, lin, ws)
	}
	return TimedSubsolveOn(rec, actor, pde.NewDisc(g, p), tol, tEnd, lin, ws, cores)
}

// TimedSubsolveOn is SubsolveOn with the same observability bracket as the
// solver drivers: subsolve begin/end events plus the per-grid duration and
// core-budget histograms. The serve batch workers use it so batched
// subsolves appear in traces and metrics exactly like pool-dispatched
// ones. With rec == nil it is exactly SubsolveOn.
func TimedSubsolveOn(rec *obs.Recorder, actor string, d *pde.Disc, tol, tEnd float64, lin rosenbrock.LinearSolver, ws *rosenbrock.Workspace, cores int) (Result, error) {
	if rec == nil {
		return SubsolveOn(d, tol, tEnd, lin, ws)
	}
	g := d.G
	gname := g.String()
	rec.Emit(obs.KSubsolveBegin, actor, gname, int64(g.L1), int64(g.L2))
	rec.Histogram("solver.subsolve." + gname + ".cores").Observe(int64(cores))
	t0 := time.Now()
	res, err := SubsolveOn(d, tol, tEnd, lin, ws)
	rec.Histogram("solver.subsolve." + gname + ".us").ObserveSince(t0)
	rec.Emit(obs.KSubsolveEnd, actor, gname, res.Stats.Ops.Flops, int64(res.Stats.Steps))
	return res, err
}

// FaultStats accounts the failure handling of one concurrent run.
type FaultStats struct {
	// Workers counts worker processes created, retries included.
	Workers int
	// Deaths counts death_worker events; a correct rendezvous has
	// Deaths == Workers, faults or not.
	Deaths int
	// Failures counts failed worker attempts.
	Failures int
	// Retries counts jobs resubmitted to fresh workers.
	Retries int
	// Abandoned counts workers given up on past their deadline.
	Abandoned int
	// Fallbacks counts jobs that exhausted their retries and were computed
	// master-locally instead.
	Fallbacks int
}

// Output is the end product of a run: the combined (prolongated) solution
// on the evaluation grid plus the per-grid results in family order.
type Output struct {
	Params   Params
	Combined *grid.Field
	Results  []Result
	// TotalFlops sums the floating-point work of all Subsolve calls.
	TotalFlops int64
	// Faults reports the failure/retry accounting of a concurrent run
	// (zero for sequential runs and fault-free concurrent runs).
	Faults FaultStats
	// Sched reports the work-stealing scheduler's accounting (zero for
	// sequential and static-pool runs).
	Sched SchedStats
}

// combine prolongates the per-grid solutions and applies the combination
// formula, optionally routing the prolongation and accumulation kernels
// through tm. Results must be in Family order so that summation order — and
// therefore floating-point rounding — is identical between the sequential
// and concurrent versions (and, by CombineWith's construction, at any team
// size).
func combine(p Params, results []Result, tm *linalg.Team) (*Output, error) {
	p = p.withDefaults()
	fam := grid.Family(p.Root, p.Level)
	if len(results) != len(fam) {
		return nil, fmt.Errorf("solver: %d results for family of %d", len(results), len(fam))
	}
	out := &Output{Params: p}
	var fields []*grid.Field
	for i, r := range results {
		if r.Grid != fam[i] {
			return nil, fmt.Errorf("solver: result %d is for %v, want %v", i, r.Grid, fam[i])
		}
		d := pde.NewDisc(r.Grid, p.Problem)
		fields = append(fields, d.FieldFromInterior(r.U, p.TEnd))
		out.TotalFlops += r.Stats.Ops.Flops
	}
	out.Combined = grid.CombineWith(tm, fields, p.Level, p.EvalGrid())
	out.Results = results
	return out, nil
}

// Combine prolongates per-grid results (in Family order) onto the
// evaluation grid and applies the combination formula, exactly as the
// drivers do after their subsolves. It exists for callers that obtained
// the Results outside this package — the serve layer's cross-request
// batcher — and is bit-for-bit identical to the drivers' combination at
// any CoresPerWorker.
func Combine(p Params, results []Result) (*Output, error) {
	p = p.withDefaults()
	if err := p.Validate(); err != nil {
		return nil, err
	}
	team := p.newTeam(p.teamSize())
	defer team.Close()
	return combine(p, results, team)
}

// Sequential runs the legacy program unchanged: the nested loop calls
// Subsolve grid by grid, then the prolongation work combines the coarse
// approximations. This is the baseline the paper measures as "st".
func Sequential(p Params) (*Output, error) {
	p = p.withDefaults()
	if err := p.Validate(); err != nil {
		return nil, err
	}
	// One workspace serves the whole family: grid i+1 reuses (and grows)
	// the solver buffers grid i allocated. One team serves every subsolve
	// and the final combination.
	cores := p.teamSize()
	team := p.newTeam(cores)
	defer team.Close()
	ws := rosenbrock.NewWorkspace()
	ws.SetTeam(team)
	var results []Result
	for _, g := range grid.Family(p.Root, p.Level) {
		r, err := timedSubsolve(p.Obs, "Sequential", g, p.Problem, p.Tol, p.TEnd, p.Solver, ws, cores)
		if err != nil {
			return nil, err
		}
		results = append(results, r)
	}
	return combine(p, results, team)
}

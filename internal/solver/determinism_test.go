package solver

import (
	"crypto/sha256"
	"encoding/binary"
	"math"
	"runtime"
	"testing"

	"repro/internal/linalg"
	"repro/internal/rosenbrock"
)

// lowerParMins drops the linalg parallel cut-overs to 1, so the team
// kernels take their parallel paths even on the small grids these tests can
// afford, and restores the defaults on cleanup.
func lowerParMins(t *testing.T) {
	t.Helper()
	savedVec, savedRed, savedRows, savedLvl, savedPh := linalg.ParMinVec, linalg.ParMinRed, linalg.ParMinRows, linalg.ParMinLevelRows, linalg.ParMinPhase
	linalg.ParMinVec, linalg.ParMinRed, linalg.ParMinRows, linalg.ParMinLevelRows, linalg.ParMinPhase = 1, 1, 1, 1, 1
	t.Cleanup(func() {
		linalg.ParMinVec, linalg.ParMinRed, linalg.ParMinRows, linalg.ParMinLevelRows, linalg.ParMinPhase = savedVec, savedRed, savedRows, savedLvl, savedPh
	})
}

// hashOutput digests every float of a run bit-exactly: the combined field
// plus each per-grid solution in family order. Two runs are bit-for-bit
// identical iff their hashes match.
func hashOutput(t *testing.T, out *Output) [32]byte {
	t.Helper()
	h := sha256.New()
	var buf [8]byte
	put := func(v linalg.Vector) {
		for _, x := range v {
			binary.LittleEndian.PutUint64(buf[:], math.Float64bits(x))
			h.Write(buf[:])
		}
	}
	put(out.Combined.V)
	for _, r := range out.Results {
		put(r.U)
	}
	var d [32]byte
	copy(d[:], h.Sum(nil))
	return d
}

// coresUnderTest are the CoresPerWorker settings every determinism test
// sweeps. GOMAXPROCS is appended at runtime.
func coresUnderTest() []int {
	cores := []int{1, 2, 4}
	if g := runtime.GOMAXPROCS(0); g != 1 && g != 2 && g != 4 {
		cores = append(cores, g)
	}
	return cores
}

// TestDeterminismAcrossCores is the PR's acceptance test: Sequential,
// Concurrent (static pool), and both work-stealing schedules produce
// SHA-256-identical output at every team size, for all three linear
// solvers, with the parallel kernel paths forced on. The stealing
// variants run with several executors and no guardrail, so steals — and,
// for the elastic variant, core donations with mid-run team resizes —
// actually happen and are proven output-neutral.
func TestDeterminismAcrossCores(t *testing.T) {
	lowerParMins(t)
	for _, lin := range []rosenbrock.LinearSolver{rosenbrock.BiCGStab, rosenbrock.GMRES, rosenbrock.ILU} {
		lin := lin
		t.Run(lin.String(), func(t *testing.T) {
			base := Params{Root: 2, Level: 2, Tol: 1e-3, Solver: lin, CoresPerWorker: 1}
			ref, err := Sequential(base)
			if err != nil {
				t.Fatal(err)
			}
			want := hashOutput(t, ref)
			for _, c := range coresUnderTest() {
				p := base
				p.CoresPerWorker = c
				seq, err := Sequential(p)
				if err != nil {
					t.Fatalf("Sequential(cores=%d): %v", c, err)
				}
				if got := hashOutput(t, seq); got != want {
					t.Errorf("Sequential(cores=%d) output differs from cores=1", c)
				}
				for _, sched := range []Schedule{SchedulePool, ScheduleSteal, ScheduleStealElastic} {
					p.Schedule = sched
					p.Executors = 0
					if sched != SchedulePool {
						p.Executors = 3
						p.StealSeed = 42
					}
					conc, err := Concurrent(p)
					if err != nil {
						t.Fatalf("Concurrent(%v, cores=%d): %v", sched, c, err)
					}
					if got := hashOutput(t, conc); got != want {
						t.Errorf("Concurrent(%v, cores=%d) output differs from Sequential(cores=1)", sched, c)
					}
				}
			}
		})
	}
}

// TestDeterminismAutoAllocation checks the CoresPerWorker=0 path — the
// workmodel-weighted split of GOMAXPROCS across workers — against the
// serial reference.
func TestDeterminismAutoAllocation(t *testing.T) {
	lowerParMins(t)
	base := Params{Root: 2, Level: 2, Tol: 1e-3, CoresPerWorker: 1}
	ref, err := Sequential(base)
	if err != nil {
		t.Fatal(err)
	}
	want := hashOutput(t, ref)
	auto := base
	auto.CoresPerWorker = 0
	seq, err := Sequential(auto)
	if err != nil {
		t.Fatal(err)
	}
	if got := hashOutput(t, seq); got != want {
		t.Error("Sequential(auto cores) output differs from cores=1")
	}
	conc, err := Concurrent(auto)
	if err != nil {
		t.Fatal(err)
	}
	if got := hashOutput(t, conc); got != want {
		t.Error("Concurrent(auto cores) output differs from Sequential(cores=1)")
	}
}

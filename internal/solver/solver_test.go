package solver

import (
	"math"
	"testing"

	"repro/internal/grid"
	"repro/internal/pde"
	"repro/internal/rosenbrock"
)

func TestParamsValidate(t *testing.T) {
	cases := []struct {
		p  Params
		ok bool
	}{
		{Params{Root: 2, Level: 3, Tol: 1e-3}, true},
		{Params{Root: 0, Level: 3, Tol: 1e-3}, false},
		{Params{Root: 2, Level: -1, Tol: 1e-3}, false},
		{Params{Root: 2, Level: 3, Tol: 0}, false},
	}
	for _, c := range cases {
		if err := c.p.Validate(); (err == nil) != c.ok {
			t.Errorf("Validate(%+v) = %v, want ok=%v", c.p, err, c.ok)
		}
	}
}

func TestEvalGridCapped(t *testing.T) {
	p := Params{Root: 2, Level: 12, Tol: 1e-3}
	g := p.EvalGrid()
	if g.L1 != DefaultEvalCap || g.L2 != DefaultEvalCap {
		t.Fatalf("eval grid = %v, want capped at %d", g, DefaultEvalCap)
	}
	p.Level = 2
	g = p.EvalGrid()
	if g.L1 != 2 || g.L2 != 2 {
		t.Fatalf("eval grid = %v, want (2,2)", g)
	}
}

func TestSubsolveLinearExact(t *testing.T) {
	// u = x + y + t is reproduced to rounding error by the discretization
	// and integrator together.
	prob := pde.LinearProblem(1, 0.5, 0.02)
	g := grid.Grid{Root: 2, L1: 1, L2: 1}
	r, err := Subsolve(g, prob, 1e-6, 0.5)
	if err != nil {
		t.Fatal(err)
	}
	d := pde.NewDisc(g, prob)
	want := d.ExactInterior(0.5)
	for i := range r.U {
		// Spatial discretization is exact for bilinear u; the remaining
		// error is the order-2 time integration at tol 1e-6.
		if math.Abs(r.U[i]-want[i]) > 2e-5 {
			t.Fatalf("u[%d] = %g, want %g", i, r.U[i], want[i])
		}
	}
	if r.Stats.Steps == 0 {
		t.Fatal("no steps recorded")
	}
}

func TestSubsolveManufacturedConverges(t *testing.T) {
	// Refining the grid shrinks the error against the manufactured exact
	// solution (first-order upwind dominates).
	prob := pde.ManufacturedProblem(1, 0.5, 0.05)
	var prev = math.Inf(1)
	for _, l := range []int{0, 1, 2} {
		g := grid.Grid{Root: 3, L1: l, L2: l}
		r, err := Subsolve(g, prob, 1e-7, 0.2)
		if err != nil {
			t.Fatal(err)
		}
		d := pde.NewDisc(g, prob)
		want := d.ExactInterior(0.2)
		maxErr := 0.0
		for i := range r.U {
			if e := math.Abs(r.U[i] - want[i]); e > maxErr {
				maxErr = e
			}
		}
		if maxErr > prev {
			t.Fatalf("error grew on refinement: level %d err %g, prev %g", l, maxErr, prev)
		}
		prev = maxErr
	}
	// First-order upwind: error ~ C*h with h = 1/32 on the finest grid.
	if prev > 0.06 {
		t.Fatalf("final error %g too large", prev)
	}
}

func TestSequentialRuns(t *testing.T) {
	out, err := Sequential(Params{Root: 2, Level: 2, Tol: 1e-3})
	if err != nil {
		t.Fatal(err)
	}
	if len(out.Results) != 5 { // 2*level+1
		t.Fatalf("got %d results, want 5", len(out.Results))
	}
	if out.Combined == nil || out.Combined.G != out.Params.EvalGrid() {
		t.Fatalf("combined field missing or on wrong grid")
	}
	if out.TotalFlops == 0 {
		t.Fatal("no flops accounted")
	}
	// The combined solution of the advected pulse must be nontrivial and
	// bounded (maximum principle up to combination wiggle).
	max := out.Combined.V.NormInf()
	if max == 0 || max > 1.5 {
		t.Fatalf("combined solution max %g outside (0, 1.5]", max)
	}
}

func TestSequentialLevelZero(t *testing.T) {
	out, err := Sequential(Params{Root: 2, Level: 0, Tol: 1e-3})
	if err != nil {
		t.Fatal(err)
	}
	if len(out.Results) != 1 {
		t.Fatalf("level 0 must run exactly one grid, got %d", len(out.Results))
	}
}

func TestSequentialFamilyOrder(t *testing.T) {
	out, err := Sequential(Params{Root: 2, Level: 2, Tol: 1e-2})
	if err != nil {
		t.Fatal(err)
	}
	fam := grid.Family(2, 2)
	for i, r := range out.Results {
		if r.Grid != fam[i] {
			t.Fatalf("result %d on %v, want %v", i, r.Grid, fam[i])
		}
	}
}

func TestSequentialSparseGridAccuracy(t *testing.T) {
	// Against the manufactured solution, the combined sparse-grid answer
	// at level L must be more accurate than the single coarse grid (0,0).
	prob := pde.ManufacturedProblem(0.5, 0.5, 0.05)
	p := Params{Root: 2, Level: 3, Tol: 1e-6, Problem: prob, TEnd: 0.2}
	out, err := Sequential(p)
	if err != nil {
		t.Fatal(err)
	}
	eval := p.EvalGrid()
	exact := grid.NewField(eval)
	exact.Fill(func(x, y float64) float64 { return prob.Exact(x, y, 0.2) })
	errCombined := out.Combined.MaxDiff(exact)

	// Single coarsest-grid solve, prolongated to the same evaluation grid.
	r, err := Subsolve(grid.Grid{Root: 2, L1: 0, L2: 0}, prob, 1e-6, 0.2)
	if err != nil {
		t.Fatal(err)
	}
	d := pde.NewDisc(r.Grid, prob)
	coarse := d.FieldFromInterior(r.U, 0.2).Prolongate(eval)
	errCoarse := coarse.MaxDiff(exact)

	if errCombined >= errCoarse {
		t.Fatalf("sparse-grid error %g not better than coarse-grid error %g", errCombined, errCoarse)
	}
}

func TestWorkGrowsWithLevel(t *testing.T) {
	// Total flops must grow steeply with level — this growth is what makes
	// the paper's sequential times explode from 0.02 s to 4000 s.
	var prev int64
	for _, level := range []int{0, 1, 2, 3} {
		out, err := Sequential(Params{Root: 2, Level: level, Tol: 1e-3})
		if err != nil {
			t.Fatal(err)
		}
		if out.TotalFlops <= prev {
			t.Fatalf("flops did not grow: level %d has %d <= %d", level, out.TotalFlops, prev)
		}
		prev = out.TotalFlops
	}
}

func TestTighterToleranceCostsMore(t *testing.T) {
	loose, err := Sequential(Params{Root: 2, Level: 2, Tol: 1e-3})
	if err != nil {
		t.Fatal(err)
	}
	tight, err := Sequential(Params{Root: 2, Level: 2, Tol: 1e-5})
	if err != nil {
		t.Fatal(err)
	}
	if tight.TotalFlops <= loose.TotalFlops {
		t.Fatalf("tol 1e-5 flops %d <= tol 1e-3 flops %d", tight.TotalFlops, loose.TotalFlops)
	}
}

func TestGMRESInnerSolverSameAnswer(t *testing.T) {
	base := Params{Root: 2, Level: 1, Tol: 1e-3}
	withGMRES := base
	withGMRES.Solver = rosenbrock.GMRES
	a, err := Sequential(base)
	if err != nil {
		t.Fatal(err)
	}
	b, err := Sequential(withGMRES)
	if err != nil {
		t.Fatal(err)
	}
	if d := a.Combined.MaxDiff(b.Combined); d > 1e-6 {
		t.Fatalf("inner solvers disagree by %g", d)
	}
}

// Distributed: reproduce §6 of the paper — running the concurrent version
// on a cluster of workstations. The MLINK file bundles every Master or
// Worker into its own task instance ({perpetual} {load 1}); the CONFIG
// file names the five machines for forked task instances (the start-up
// machine is bumpa.sen.cwi.nl); and the run prints the paper's
// chronological Welcome/Bye output, each message labelled with host, task
// instance, process instance, timestamp, task, manifold, source file and
// line.
//
// The cluster is simulated (internal/sim + internal/cluster) with the
// paper's machine mix, so the run is deterministic and instantaneous while
// preserving the sequencing. Afterwards the ebb & flow of machines is
// reconstructed from the log, exactly the way the paper built Figure 1.
//
//	go run ./examples/distributed
package main

import (
	"fmt"
	"log"
	"os"

	"repro/internal/cluster"
	"repro/internal/grid"
	"repro/internal/manifold/mconfig"
	"repro/internal/manifold/mlink"
	"repro/internal/sim"
	"repro/internal/trace"
	"repro/internal/workmodel"
)

const (
	level = 2 // five workers, as in the paper's §6 walk-through
	tol   = 1e-3
	epoch = 1048087412 // the timestamp base seen in the paper's output
)

func main() {
	linkFile, err := mlink.Parse(mconfig.PaperMlink())
	if err != nil {
		log.Fatal(err)
	}
	cfg, err := mconfig.Parse(mconfig.PaperConfig())
	if err != nil {
		log.Fatal(err)
	}
	placer, err := cfg.Placer("mainprog")
	if err != nil {
		log.Fatal(err)
	}
	rule := linkFile.RuleFor("mainprog")
	fmt.Printf("# mainprog.mlink: perpetual=%v load=%d; hosts: %v\n\n",
		rule.Perpetual, rule.Load, placer.Hosts())

	env := sim.NewEnv()
	cl := cluster.NewPaper(env)
	model := workmodel.Paper()
	logger := trace.NewLogger(os.Stdout, epoch)

	startup := cl.MachineByName("bumpa.sen.cwi.nl")
	bundler := mlink.NewBundler(linkFile, "mainprog")
	hostOf := map[int]*cluster.Machine{}

	say := func(p *sim.Proc, host *cluster.Machine, inst *mlink.Instance, procID int, manifold string, line int, msg string) {
		logger.Log(p.Now(), trace.Entry{
			Host: host.Name(), TaskID: 262144 + inst.ID*262144 + inst.ID, ProcID: procID,
			Task: "mainprog", Manifold: manifold, File: "ResSourceCode.c", Line: line, Msg: msg,
		})
	}

	results := sim.NewStore[grid.Grid](env, "dataport")
	env.Spawn("Master", func(p *sim.Proc) {
		p.Hold(0.1) // runtime start-up
		masterInst, _ := bundler.Place("Master")
		hostOf[masterInst.ID] = startup
		say(p, startup, masterInst, 140, "Master(port in)", 136, "Welcome")
		fam := grid.Family(2, level)
		for _, g := range fam {
			g := g
			inst, fresh := bundler.Place("Worker")
			if fresh {
				hostOf[inst.ID] = cl.MachineByName(placer.Next())
				p.Hold(0.08) // fork
			} else {
				p.Hold(0.03) // reuse of a perpetual task instance
			}
			host := hostOf[inst.ID]
			cl.Transfer(p, startup, host, workmodel.JobBytes(g))
			env.Spawn("Worker", func(w *sim.Proc) {
				say(w, host, inst, 79+inst.ID, "Worker(event)", 351, "Welcome")
				cl.Compute(w, host, model.GridWork(g, tol))
				cl.Transfer(w, host, startup, workmodel.ResultBytes(g))
				say(w, host, inst, 79+inst.ID, "Worker(event)", 370, "Bye")
				if err := bundler.Leave(inst, "Worker"); err != nil {
					log.Fatal(err)
				}
				results.Put(g)
			})
		}
		for range fam {
			results.Get(p)
		}
		say(p, startup, masterInst, 140, "Master(port in)", 337, "Bye")
	})
	env.Run()
	if blocked := env.Blocked(); len(blocked) > 0 {
		log.Fatalf("deadlock: %v", blocked)
	}

	fmt.Printf("\n# %d workers ran in %d fresh task instance(s) thanks to perpetual reuse\n",
		2*level+1, bundler.Forks())
	fmt.Println("# machines in use over the run (reconstructed from the log, as for Figure 1):")
	for _, pt := range trace.MachineEbbFlow(logger.Entries()) {
		fmt.Printf("#   t=%.3fs machines=%d\n", pt.T-epoch, pt.Count)
	}
}

// Quickstart: coordinate plain Go worker functions with the paper's
// generic master/worker protocol (internal/core).
//
// The protocol is exactly the MANIFOLD ProtocolMW of the paper: the master
// asks the coordinator for a pool (CreatePool), requests workers one by
// one (CreateWorker), charges each through its own output port (Send),
// collects results from its dataport (ReadResult), synchronizes on the
// pool's death (Rendezvous), and finally releases the coordinator
// (Finished). Neither the master nor the workers know anything about each
// other: all communication is wired from the outside.
//
//	go run ./examples/quickstart
package main

import (
	"fmt"
	"sort"

	"repro/internal/core"
)

func main() {
	jobs := []int{3, 1, 4, 1, 5, 9, 2, 6}
	var results []int

	core.Run(func(m *core.Master) {
		m.CreatePool()
		for _, j := range jobs {
			m.CreateWorker() // the coordinator forks one and hands back &worker
			m.Send(j)        // the job flows master.output -> worker.input
		}
		for range jobs {
			// Results arrive in completion order through the KK stream
			// worker.output -> master.dataport.
			results = append(results, m.ReadResult().(int))
		}
		m.Rendezvous() // wait until every worker has died
		m.Finished()   // the coordinator halts; the master continues
	}, func(w *core.Worker) {
		n := w.Read().(int)
		w.Write(n * n)
	})

	sort.Ints(results)
	fmt.Println("squares:", results)
}

// Rotation: the protocol's genericity on a different computation — the
// classic Molenkamp solid-body-rotation transport test. A Gaussian pulse
// is carried a quarter revolution around the unit square; each worker of
// the pool integrates one sparse-grid family member with the
// variable-coefficient discretization and the ILU-preconditioned
// Rosenbrock solver. The coordinator is the unchanged ProtocolMW of the
// paper: it neither knows nor cares that the computation changed.
//
//	go run ./examples/rotation
package main

import (
	"fmt"
	"log"
	"math"

	"repro/internal/core"
	"repro/internal/grid"
	"repro/internal/linalg"
	"repro/internal/pde"
	"repro/internal/rosenbrock"
)

type job struct {
	g grid.Grid
}

type result struct {
	g     grid.Grid
	u     linalg.Vector
	steps int
}

func main() {
	const (
		root    = 3
		level   = 2
		quarter = 0.25 // one revolution per unit time
	)
	prob := pde.RotatingProblem(2*math.Pi, 5e-4)
	fam := grid.Family(root, level)
	results := map[grid.Grid]result{}

	core.Run(func(m *core.Master) {
		m.CreatePool()
		for _, g := range fam {
			m.CreateWorker()
			m.Send(job{g: g})
		}
		for range fam {
			r := m.ReadResult().(result)
			results[r.g] = r
		}
		m.Rendezvous()
		m.Finished()
	}, func(w *core.Worker) {
		j := w.Read().(job)
		d := pde.NewVarDisc(j.g, prob)
		u := d.InitialInterior()
		st, err := rosenbrock.Integrate(d, u, 0, quarter,
			rosenbrock.Config{Tol: 1e-4, Solver: rosenbrock.ILU})
		if err != nil {
			log.Fatal(err)
		}
		w.Write(result{g: j.g, u: u, steps: st.Steps})
	})

	// Combine on the evaluation grid and locate the rotated pulse.
	target := grid.Grid{Root: root, L1: level, L2: level}
	var fields []*grid.Field
	for _, g := range fam {
		r := results[g]
		d := pde.NewVarDisc(g, prob)
		fields = append(fields, d.FieldFromInterior(r.u, quarter))
		fmt.Printf("grid (%d,%d): %3d Rosenbrock steps\n", g.L1, g.L2, r.steps)
	}
	combined := grid.Combine(fields, level, target)

	bestX, bestY, best := 0.0, 0.0, math.Inf(-1)
	for iy := 0; iy <= target.NY(); iy++ {
		for ix := 0; ix <= target.NX(); ix++ {
			if v := combined.At(ix, iy); v > best {
				best, bestX, bestY = v, target.X(ix), target.Y(iy)
			}
		}
	}
	fmt.Printf("\npulse started at (0.50, 0.25); after a quarter turn the peak (%.2f) sits at (%.2f, %.2f)\n",
		best, bestX, bestY)
	fmt.Println("expected: near (0.75, 0.50) — counterclockwise rotation")
}

// Pipeline: the reusability claim of the paper — the coordination layer is
// separate from the computation, so entirely different applications are
// glued from the same pieces. Here a three-stage pipeline is coordinated
// by a MANIFOLD program executed by this repository's interpreter (the
// stand-in for the Mc compiler), with the stages as atomic Go processes
// that know nothing about each other or about MANIFOLD.
//
//	go run ./examples/pipeline
package main

import (
	"fmt"
	"log"
	"os"
	"strings"

	"repro/internal/manifold"
	"repro/internal/manifold/lang"
)

const program = `
// pipeline.m — source -> upper -> sink, wired exogenously.
manifold Source(port in p) atomic.
manifold Upper(port in p)  atomic.
manifold Sink(port in p)   atomic.

manifold Main()
{
    auto process src is Source(0).
    auto process up  is Upper(0).
    auto process snk is Sink(0).

    begin: (MES("pipeline wired"), src -> up, up -> snk, terminated(snk)).
}
`

func main() {
	prog, err := lang.Parse("pipeline.m", program)
	if err != nil {
		log.Fatal(err)
	}
	it, err := lang.NewInterp(prog)
	if err != nil {
		log.Fatal(err)
	}
	it.Output = os.Stdout

	words := []string{"the", "cut", "and", "paste", "renovation"}
	check := func(name string, fn lang.AtomicFunc) {
		if err := it.RegisterAtomic(name, fn); err != nil {
			log.Fatal(err)
		}
	}
	check("Source", func(p *manifold.Process, args []lang.Value) {
		for _, w := range words {
			p.Output().Write(w)
		}
		p.Output().Close()
	})
	check("Upper", func(p *manifold.Process, args []lang.Value) {
		for range words {
			u, ok := p.Input().Read()
			if !ok {
				return
			}
			p.Output().Write(strings.ToUpper(u.(string)))
		}
	})
	check("Sink", func(p *manifold.Process, args []lang.Value) {
		var out []string
		for range words {
			u, ok := p.Input().Read()
			if !ok {
				break
			}
			out = append(out, u.(string))
		}
		fmt.Println("sink received:", strings.Join(out, " "))
	})

	if err := it.Run("Main"); err != nil {
		log.Fatal(err)
	}
}

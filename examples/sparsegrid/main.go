// Sparsegrid: the paper's application end to end — the time-dependent
// advection-diffusion problem solved with the sparse-grid combination
// technique — run both in its legacy sequential structure and in the
// renovated concurrent structure, with the outputs compared bit for bit
// (the paper's §6: "exactly the same as in the sequential version").
//
// It also demonstrates the accuracy story that motivated sparse grids:
// against a manufactured exact solution, the combined solution of many
// cheap anisotropic grids beats the single coarse grid.
//
//	go run ./examples/sparsegrid
package main

import (
	"fmt"
	"log"
	"time"

	"repro/internal/grid"
	"repro/internal/pde"
	"repro/internal/solver"
)

func main() {
	// Part 1: legacy vs renovated on the transport problem.
	p := solver.Params{Root: 2, Level: 3, Tol: 1e-3}
	fmt.Printf("transport problem: root=%d level=%d tol=%g (%d grids)\n",
		p.Root, p.Level, p.Tol, 2*p.Level+1)

	t0 := time.Now()
	seq, err := solver.Sequential(p)
	if err != nil {
		log.Fatal(err)
	}
	seqT := time.Since(t0)

	t0 = time.Now()
	conc, err := solver.Concurrent(p)
	if err != nil {
		log.Fatal(err)
	}
	concT := time.Since(t0)

	fmt.Printf("  sequential: %8v   concurrent: %8v (workers are goroutines)\n", seqT.Round(time.Millisecond), concT.Round(time.Millisecond))
	if d := seq.Combined.MaxDiff(conc.Combined); d == 0 {
		fmt.Println("  outputs are exactly the same — the renovation changed structure, not results")
	} else {
		log.Fatalf("outputs differ by %g", d)
	}

	// Part 2: why sparse grids — accuracy per grid against a known
	// solution.
	prob := pde.ManufacturedProblem(1, 0.5, 0.05)
	pp := solver.Params{Root: 2, Level: 3, Tol: 1e-6, Problem: prob, TEnd: 0.2}
	out, err := solver.Sequential(pp)
	if err != nil {
		log.Fatal(err)
	}
	eval := pp.EvalGrid()
	exact := grid.NewField(eval)
	exact.Fill(func(x, y float64) float64 { return prob.Exact(x, y, 0.2) })

	coarse, err := solver.Subsolve(grid.Grid{Root: 2, L1: 0, L2: 0}, prob, 1e-6, 0.2)
	if err != nil {
		log.Fatal(err)
	}
	d := pde.NewDisc(coarse.Grid, prob)
	coarseField := d.FieldFromInterior(coarse.U, 0.2).Prolongate(eval)

	fmt.Printf("\nmanufactured solution at t=0.2 (max error on %v):\n", eval)
	fmt.Printf("  single coarse grid:      %.5f\n", coarseField.MaxDiff(exact))
	fmt.Printf("  sparse-grid combination: %.5f  (%d coarse anisotropic solves)\n",
		out.Combined.MaxDiff(exact), len(out.Results))

	// Part 3: the per-grid work imbalance that shapes the paper's speedup.
	fmt.Printf("\nper-grid Rosenbrock work at level %d (the U-shape of the work model):\n", p.Level)
	for _, r := range seq.Results {
		fmt.Printf("  subsolve(%d,%d): %9.3g flops, %3d steps\n",
			r.Grid.L1, r.Grid.L2, float64(r.Stats.Ops.Flops), r.Stats.Steps)
	}
}
